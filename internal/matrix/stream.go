package matrix

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// The streaming JSONL format lets a sweep emit per-cell results as they
// complete — no in-memory Report, no lost work on a crash mid-sweep — and
// lets shards of one sweep run on different workers and be merged later. A
// stream is one JSON object per line:
//
//	{"type":"header","header":{...}}     exactly once, first
//	{"type":"outcome","outcome":{...}}   once per cell, in completion order
//	{"type":"trailer","trailer":{...}}   exactly once, last (integrity check)
//
// Merge reconstructs the aggregate Report from a complete set of shard
// streams; its Fingerprint provably equals the monolithic run's because the
// fingerprint is a pure function of the outcomes in cell-index order and
// every cell runs on its own deterministic engine either way. Both ends are
// streaming: RunStream folds its trailer counts through an incremental
// Aggregator as cells complete, and Merge interleaves the shard files
// through per-stream cursors into another Aggregator, so neither side ever
// holds the sweep's cells or outcomes in memory.

// StreamHeader opens a stream and identifies the slice of the sweep it
// carries.
type StreamHeader struct {
	// Name labels the sweep; all shards of one sweep must agree on it.
	Name string `json:"name"`
	// TotalCells is the size of the whole sweep (not of this shard).
	TotalCells int `json:"total_cells"`
	// Shard is the canonical "i/n" shard spec this stream ran.
	Shard string `json:"shard"`
	// ShardCells is how many cells this shard contains.
	ShardCells int `json:"shard_cells"`
}

// StreamTrailer closes a stream; a missing or inconsistent trailer marks a
// truncated or corrupted shard file.
type StreamTrailer struct {
	// CellsRun must equal the header's ShardCells.
	CellsRun int `json:"cells_run"`
	// Errors and Consensus are this shard's counts (summary only; Merge
	// recomputes everything from the outcomes).
	Errors int `json:"errors"`
	// Consensus counts this shard's cells where all four properties held.
	Consensus int `json:"consensus"`
	// WallNS is this shard's wall-clock time.
	WallNS int64 `json:"wall_ns"`
}

// streamRecord is one JSONL line.
type streamRecord struct {
	Type    string         `json:"type"`
	Header  *StreamHeader  `json:"header,omitempty"`
	Outcome *Outcome       `json:"outcome,omitempty"`
	Trailer *StreamTrailer `json:"trailer,omitempty"`
}

// streamCells runs the source's cells and appends one outcome record per
// completed cell (completion order), folding the shard summary into tr
// through an incremental Aggregator. Memory is O(axes + parallelism)
// regardless of the source's size.
func streamCells(src CellSource, opts Options, enc *json.Encoder, bw *bufio.Writer, tr *StreamTrailer) error {
	if src.Len() == 0 {
		// An empty shard (more shards than cells) is legitimate: it
		// contributes a valid header+trailer stream with zero outcomes.
		return nil
	}
	agg := NewAggregator(false)
	_, err := runPool(src, opts, func(pos int, o Outcome) error {
		if err := agg.Add(pos, o); err != nil {
			return err
		}
		// Flushed per line so a concurrent tail (or a crash post-mortem)
		// sees every completed cell.
		if err := enc.Encode(streamRecord{Type: "outcome", Outcome: &o}); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	rep, err := agg.Report(0)
	if err != nil {
		return err
	}
	tr.CellsRun += rep.Cells
	tr.Errors += rep.Errors
	tr.Consensus += rep.Consensus
	return nil
}

// RunStream executes the source's cells and writes every outcome to w as a
// JSONL line the moment it completes (completion order, not index order —
// Merge reorders). The returned trailer summarizes the shard. Nothing beyond
// the running summary is buffered: a million-cell shard streams in constant
// memory.
func RunStream(src CellSource, opts Options, w io.Writer, hdr StreamHeader) (*StreamTrailer, error) {
	hdr.ShardCells = src.Len()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(streamRecord{Type: "header", Header: &hdr}); err != nil {
		return nil, err
	}
	var tr StreamTrailer
	start := time.Now()
	if err := streamCells(src, opts, enc, bw, &tr); err != nil {
		return nil, err
	}
	tr.WallNS = time.Since(start).Nanoseconds()
	if err := enc.Encode(streamRecord{Type: "trailer", Trailer: &tr}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RunStreamFile is RunStream writing to a file path; "-" streams to stdout.
// The shared helper keeps cupsim's and experiments' shard modes identical.
func RunStreamFile(path string, src CellSource, opts Options, hdr StreamHeader) (*StreamTrailer, error) {
	if path == "-" {
		return RunStream(src, opts, os.Stdout, hdr)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tr, err := RunStream(src, opts, f, hdr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// streamCursor reads one shard stream incrementally for the merge: records
// are consumed on demand and out-of-order outcomes wait in a small pending
// buffer until the merge asks for their index. For streams written by
// RunStream the buffer stays O(that shard's parallelism) — the pool claims
// cells in order, so completion order can only run that far ahead.
type streamCursor struct {
	dec     *json.Decoder
	hdr     *StreamHeader
	tr      *StreamTrailer
	pending map[int]*Outcome
	outs    int
	eof     bool
	// span is the parsed header spec when it identifies a proper slice of
	// the sweep ("i/n" or a work-stolen tail "i/n@t"); nil means ownership
	// is unknown and the merge scheduler falls back to its buffer-aware
	// heuristic for this stream.
	span *Span
}

// newStreamCursor opens a stream and reads its header record.
func newStreamCursor(r io.Reader) (*streamCursor, error) {
	c := &streamCursor{dec: json.NewDecoder(r), pending: make(map[int]*Outcome)}
	var rec streamRecord
	if err := c.dec.Decode(&rec); err == io.EOF {
		return nil, fmt.Errorf("stream: missing header")
	} else if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if rec.Type != "header" || rec.Header == nil {
		return nil, fmt.Errorf("stream: first record is %q, want header", rec.Type)
	}
	c.hdr = rec.Header
	return c, nil
}

// owns reports whether this cursor's shard spec claims the global cell
// index. Unknown specs own nothing (the scheduler handles them separately).
func (c *streamCursor) owns(i int) bool {
	return c.span != nil && c.span.Owns(i)
}

// minPending returns the smallest buffered cell index, or ok=false when the
// buffer is empty.
func (c *streamCursor) minPending() (int, bool) {
	min, ok := 0, false
	for i := range c.pending {
		if !ok || i < min {
			min, ok = i, true
		}
	}
	return min, ok
}

// advance consumes one record, parking outcomes in the pending buffer.
// It returns false once the stream is exhausted.
func (c *streamCursor) advance() (bool, error) {
	if c.eof {
		return false, nil
	}
	var rec streamRecord
	if err := c.dec.Decode(&rec); err == io.EOF {
		c.eof = true
		return false, nil
	} else if err != nil {
		return false, fmt.Errorf("stream: %w", err)
	}
	switch rec.Type {
	case "header":
		return false, fmt.Errorf("stream: duplicate header")
	case "outcome":
		if c.tr != nil {
			return false, fmt.Errorf("stream: outcome after trailer")
		}
		if rec.Outcome == nil {
			return false, fmt.Errorf("stream: empty outcome record")
		}
		if _, dup := c.pending[rec.Outcome.Index]; dup {
			return false, fmt.Errorf("stream: duplicate outcome for cell index %d", rec.Outcome.Index)
		}
		c.pending[rec.Outcome.Index] = rec.Outcome
		c.outs++
	case "trailer":
		if c.tr != nil {
			return false, fmt.Errorf("stream: duplicate trailer")
		}
		c.tr = rec.Trailer
	default:
		return false, fmt.Errorf("stream: unknown record type %q", rec.Type)
	}
	return true, nil
}

// take pops the outcome for global cell index i if this cursor has buffered
// it.
func (c *streamCursor) take(i int) (*Outcome, bool) {
	o, ok := c.pending[i]
	if ok {
		delete(c.pending, i)
	}
	return o, ok
}

// finish drains the rest of the stream and validates its framing: a trailer
// must be present and agree with the header and the consumed outcome count,
// and no unconsumed outcomes may remain (those are duplicates of cells
// another stream — or this one — already supplied).
func (c *streamCursor) finish() error {
	for {
		more, err := c.advance()
		if err != nil {
			return err
		}
		if !more {
			break
		}
	}
	if c.tr == nil {
		return fmt.Errorf("stream: missing trailer (truncated shard file?)")
	}
	if len(c.pending) > 0 {
		return fmt.Errorf("stream: %d outcome(s) duplicate cells another stream supplied", len(c.pending))
	}
	if c.tr.CellsRun != c.outs || (c.hdr.ShardCells != 0 && c.hdr.ShardCells != c.outs) {
		return fmt.Errorf("stream: header/trailer claim %d/%d cells, found %d",
			c.hdr.ShardCells, c.tr.CellsRun, c.outs)
	}
	return nil
}

// assignShards parses each cursor's shard spec independently. A spec that
// claims the whole sweep ("1/1", or an empty header) is only meaningful when
// the stream is alone — alongside other streams it cannot be literally true,
// so it is demoted to unknown and scheduled by the heuristic instead. Specs
// that are not spans at all (the fabric's "cells:…" gap-filler streams) stay
// unknown by construction.
func assignShards(cursors []*streamCursor) {
	for _, c := range cursors {
		sp, err := ParseSpan(c.hdr.Shard)
		if err != nil || (sp.IsAll() && len(cursors) > 1) {
			continue
		}
		c.span = &sp
	}
}

// cursorPos recovers a cursor's stream number for error messages.
func cursorPos(cursors []*streamCursor, c *streamCursor) int {
	for i, cand := range cursors {
		if cand == c {
			return i
		}
	}
	return -1
}

// MergeOptions tunes stream merging.
type MergeOptions struct {
	// KeepOutcomes retains every cell outcome in the merged report (per-cell
	// renderings need them). Without it the merge runs in O(axes) memory and
	// the report is the aggregate summary plus the sealed fingerprint — the
	// mode million-cell sweeps want.
	KeepOutcomes bool
}

// mergeStats records scheduler behavior for the constant-memory tests.
type mergeStats struct {
	// maxPending is the largest total out-of-order buffer (outcomes parked
	// across all cursors) the merge ever held.
	maxPending int
}

// Merge reconstructs the aggregate Report from a complete set of shard
// streams of one sweep. Every cell index 0..TotalCells-1 must appear exactly
// once across the streams. The resulting report's Fingerprint equals the
// monolithic run's (wall-clock fields are excluded from the fingerprint;
// WallNS is the sum of the shards' wall times).
//
// The merge is incremental: cells are folded into an Aggregator in global
// index order while the streams are read interleaved, so beyond the merged
// report itself only each stream's out-of-order window is buffered. Each
// stream's next-owned index is routed through its own shard spec: a stalled
// index reads only from the streams whose "i/n" header claims it, so for
// everything RunStream writes the window is O(streams × per-shard
// parallelism) — not O(cells); a resumed shard can additionally buffer up to
// its own appended-tail window. Streams without usable specs (hand-split or
// relabeled shards) are scheduled by buffer pressure instead — drained
// streams are read first, then the stream lagging furthest behind — which
// keeps pathological non-round-robin splits (e.g. contiguous blocks) at
// O(streams) buffered outcomes rather than O(cells).
func Merge(opts MergeOptions, readers ...io.Reader) (*Report, error) {
	rep, _, err := merge(opts, readers...)
	return rep, err
}

func merge(opts MergeOptions, readers ...io.Reader) (*Report, mergeStats, error) {
	var stats mergeStats
	if len(readers) == 0 {
		return nil, stats, fmt.Errorf("merge: no streams")
	}
	cursors := make([]*streamCursor, len(readers))
	for i, r := range readers {
		c, err := newStreamCursor(r)
		if err != nil {
			return nil, stats, fmt.Errorf("merge: stream %d: %w", i, err)
		}
		cursors[i] = c
	}
	name, total := cursors[0].hdr.Name, cursors[0].hdr.TotalCells
	for i, c := range cursors[1:] {
		if c.hdr.Name != name || c.hdr.TotalCells != total {
			return nil, stats, fmt.Errorf("merge: stream %d is from a different sweep (%q, %d cells; want %q, %d)",
				i+1, c.hdr.Name, c.hdr.TotalCells, name, total)
		}
	}
	assignShards(cursors)

	// advance wraps cursor reads with error attribution and the pending-size
	// statistic.
	advance := func(c *streamCursor) (bool, error) {
		more, err := c.advance()
		if err != nil {
			return false, fmt.Errorf("merge: stream %d: %w", cursorPos(cursors, c), err)
		}
		pending := 0
		for _, cc := range cursors {
			pending += len(cc.pending)
		}
		if pending > stats.maxPending {
			stats.maxPending = pending
		}
		return more, nil
	}

	hasUnknown := false
	for _, c := range cursors {
		if c.span == nil {
			hasUnknown = true
		}
	}

	// fill reads records until some cursor can supply cell index next,
	// choosing which stream to read by ownership first and buffer pressure
	// second. It reports false when the cell cannot appear anymore: every
	// stream that could hold it is exhausted.
	fill := func(next int) (bool, error) {
		// 1. Streams whose shard spec owns next.
		progress := false
		for _, c := range cursors {
			if c.owns(next) {
				more, err := advance(c)
				if err != nil {
					return false, err
				}
				progress = progress || more
			}
		}
		if progress {
			return true, nil
		}
		// 2. Unknown-spec streams with nothing buffered: reading them costs
		// no memory and reveals where they are.
		for _, c := range cursors {
			if c.span == nil && len(c.pending) == 0 {
				more, err := advance(c)
				if err != nil {
					return false, err
				}
				progress = progress || more
			}
		}
		if progress {
			return true, nil
		}
		// 3. The unknown-spec stream lagging furthest behind (smallest
		// buffered index) — the most plausible holder of next.
		var best *streamCursor
		bestMin := 0
		for _, c := range cursors {
			if c.span != nil || c.eof {
				continue
			}
			if m, ok := c.minPending(); ok && (best == nil || m < bestMin) {
				best, bestMin = c, m
			}
		}
		if best != nil {
			more, err := advance(best)
			if err != nil {
				return false, err
			}
			if more {
				return true, nil
			}
		}
		// 4. Last resort, only when spec-less streams are in the merge — the
		// cell could still be hiding anywhere, so read whatever is open
		// rather than failing early. When every stream carries a spec,
		// ownership is total: an exhausted owner means the cell is missing,
		// and reading (and buffering) the other streams to prove it would
		// cost O(cells) of memory for the same error.
		if !hasUnknown {
			return false, nil
		}
		for _, c := range cursors {
			more, err := advance(c)
			if err != nil {
				return false, err
			}
			progress = progress || more
		}
		return progress, nil
	}

	agg := NewAggregator(opts.KeepOutcomes)
	for next := 0; next < total; next++ {
		var o *Outcome
		for o == nil {
			for _, c := range cursors {
				if got, ok := c.take(next); ok {
					o = got
					break
				}
			}
			if o != nil {
				break
			}
			progress, err := fill(next)
			if err != nil {
				return nil, stats, err
			}
			if !progress {
				return nil, stats, fmt.Errorf("merge: cell index %d missing across %d stream(s) (missing shards?)", next, len(cursors))
			}
		}
		if err := agg.Add(next, *o); err != nil {
			return nil, stats, fmt.Errorf("merge: %w", err)
		}
	}

	var wallNS int64
	for i, c := range cursors {
		if err := c.finish(); err != nil {
			return nil, stats, fmt.Errorf("merge: stream %d: %w", i, err)
		}
		wallNS += c.tr.WallNS
	}
	rep, err := agg.Report(0)
	if err != nil {
		return nil, stats, fmt.Errorf("merge: %w", err)
	}
	rep.Name = name
	rep.WallNS = wallNS
	return rep, stats, nil
}

// MergeStreams is Merge retaining every outcome (the historical default).
func MergeStreams(readers ...io.Reader) (*Report, error) {
	return Merge(MergeOptions{KeepOutcomes: true}, readers...)
}

// MergeFilesWith is Merge over shard files on disk.
func MergeFilesWith(opts MergeOptions, paths ...string) (*Report, error) {
	readers := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		files = append(files, f)
		readers = append(readers, bufio.NewReaderSize(f, 1<<16))
	}
	return Merge(opts, readers...)
}

// MergeFiles is MergeStreams over shard files on disk.
func MergeFiles(paths ...string) (*Report, error) {
	return MergeFilesWith(MergeOptions{KeepOutcomes: true}, paths...)
}
