package matrix

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// The streaming JSONL format lets a sweep emit per-cell results as they
// complete — no in-memory Report, no lost work on a crash mid-sweep — and
// lets shards of one sweep run on different workers and be merged later. A
// stream is one JSON object per line:
//
//	{"type":"header","header":{...}}     exactly once, first
//	{"type":"outcome","outcome":{...}}   once per cell, in completion order
//	{"type":"trailer","trailer":{...}}   exactly once, last (integrity check)
//
// Merge reconstructs the aggregate Report from a complete set of shard
// streams; its Fingerprint provably equals the monolithic run's because the
// fingerprint is a pure function of the outcomes in cell-index order and
// every cell runs on its own deterministic engine either way.

// StreamHeader opens a stream and identifies the slice of the sweep it
// carries.
type StreamHeader struct {
	// Name labels the sweep; all shards of one sweep must agree on it.
	Name string `json:"name"`
	// TotalCells is the size of the whole sweep (not of this shard).
	TotalCells int `json:"total_cells"`
	// Shard is the canonical "i/n" shard spec this stream ran.
	Shard string `json:"shard"`
	// ShardCells is how many cells this shard contains.
	ShardCells int `json:"shard_cells"`
}

// StreamTrailer closes a stream; a missing or inconsistent trailer marks a
// truncated or corrupted shard file.
type StreamTrailer struct {
	// CellsRun must equal the header's ShardCells.
	CellsRun int `json:"cells_run"`
	// Errors and Consensus are this shard's counts (summary only; Merge
	// recomputes everything from the outcomes).
	Errors int `json:"errors"`
	// Consensus counts this shard's cells where all four properties held.
	Consensus int `json:"consensus"`
	// WallNS is this shard's wall-clock time.
	WallNS int64 `json:"wall_ns"`
}

// streamRecord is one JSONL line.
type streamRecord struct {
	Type    string         `json:"type"`
	Header  *StreamHeader  `json:"header,omitempty"`
	Outcome *Outcome       `json:"outcome,omitempty"`
	Trailer *StreamTrailer `json:"trailer,omitempty"`
}

// RunStream executes the cells and writes every outcome to w as a JSONL line
// the moment it completes (completion order, not index order — Merge sorts).
// The returned trailer summarizes the shard. Unlike Run, nothing beyond the
// running summary is buffered.
func RunStream(cells []Cell, opts Options, w io.Writer, hdr StreamHeader) (*StreamTrailer, error) {
	hdr.ShardCells = len(cells)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(streamRecord{Type: "header", Header: &hdr}); err != nil {
		return nil, err
	}
	var tr StreamTrailer
	start := time.Now()
	// An empty shard (more shards than cells) is legitimate: it emits a
	// valid header+trailer stream with zero outcomes, which Merge accepts.
	if len(cells) > 0 {
		_, err := runPool(cells, opts, func(_ int, o Outcome) error {
			tr.CellsRun++
			if o.Err != "" {
				tr.Errors++
			}
			if o.Consensus {
				tr.Consensus++
			}
			// Flushed per line so a concurrent tail (or a crash post-mortem)
			// sees every completed cell.
			if err := enc.Encode(streamRecord{Type: "outcome", Outcome: &o}); err != nil {
				return err
			}
			return bw.Flush()
		})
		if err != nil {
			return nil, err
		}
	}
	tr.WallNS = time.Since(start).Nanoseconds()
	if err := enc.Encode(streamRecord{Type: "trailer", Trailer: &tr}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// RunStreamFile is RunStream writing to a file path; "-" streams to stdout.
// The shared helper keeps cupsim's and experiments' shard modes identical.
func RunStreamFile(path string, cells []Cell, opts Options, hdr StreamHeader) (*StreamTrailer, error) {
	if path == "-" {
		return RunStream(cells, opts, os.Stdout, hdr)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tr, err := RunStream(cells, opts, f, hdr)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// readStream parses one shard stream, validating its framing.
func readStream(r io.Reader) (*StreamHeader, []Outcome, *StreamTrailer, error) {
	dec := json.NewDecoder(r)
	var hdr *StreamHeader
	var tr *StreamTrailer
	var outs []Outcome
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, nil, fmt.Errorf("stream: %w", err)
		}
		switch rec.Type {
		case "header":
			if hdr != nil {
				return nil, nil, nil, fmt.Errorf("stream: duplicate header")
			}
			hdr = rec.Header
		case "outcome":
			if hdr == nil {
				return nil, nil, nil, fmt.Errorf("stream: outcome before header")
			}
			if tr != nil {
				return nil, nil, nil, fmt.Errorf("stream: outcome after trailer")
			}
			if rec.Outcome == nil {
				return nil, nil, nil, fmt.Errorf("stream: empty outcome record")
			}
			outs = append(outs, *rec.Outcome)
		case "trailer":
			if tr != nil {
				return nil, nil, nil, fmt.Errorf("stream: duplicate trailer")
			}
			tr = rec.Trailer
		default:
			return nil, nil, nil, fmt.Errorf("stream: unknown record type %q", rec.Type)
		}
	}
	if hdr == nil {
		return nil, nil, nil, fmt.Errorf("stream: missing header")
	}
	if tr == nil {
		return nil, nil, nil, fmt.Errorf("stream: missing trailer (truncated shard file?)")
	}
	if tr.CellsRun != len(outs) || (hdr.ShardCells != 0 && hdr.ShardCells != len(outs)) {
		return nil, nil, nil, fmt.Errorf("stream: header/trailer claim %d/%d cells, found %d",
			hdr.ShardCells, tr.CellsRun, len(outs))
	}
	return hdr, outs, tr, nil
}

// MergeStreams reconstructs the aggregate Report from a complete set of shard
// streams of one sweep. Every cell index 0..TotalCells-1 must appear exactly
// once across the streams. The resulting report's Fingerprint equals the
// monolithic run's (wall-clock fields are excluded from the fingerprint;
// WallNS is the sum of the shards' wall times).
func MergeStreams(readers ...io.Reader) (*Report, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("merge: no streams")
	}
	var name string
	total := -1
	var outcomes []Outcome
	var wallNS int64
	for i, r := range readers {
		hdr, outs, tr, err := readStream(r)
		if err != nil {
			return nil, fmt.Errorf("merge: stream %d: %w", i, err)
		}
		if i == 0 {
			name, total = hdr.Name, hdr.TotalCells
		} else if hdr.Name != name || hdr.TotalCells != total {
			return nil, fmt.Errorf("merge: stream %d is from a different sweep (%q, %d cells; want %q, %d)",
				i, hdr.Name, hdr.TotalCells, name, total)
		}
		outcomes = append(outcomes, outs...)
		wallNS += tr.WallNS
	}
	if len(outcomes) != total {
		return nil, fmt.Errorf("merge: %d outcomes for a %d-cell sweep (missing or extra shards?)", len(outcomes), total)
	}
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].Index < outcomes[j].Index })
	for i := range outcomes {
		if outcomes[i].Index != i {
			return nil, fmt.Errorf("merge: cell index %d missing or duplicated (saw %d at position %d)",
				i, outcomes[i].Index, i)
		}
	}
	rep := aggregate(outcomes, 0)
	rep.Name = name
	rep.WallNS = wallNS
	return rep, nil
}

// MergeFiles is MergeStreams over shard files on disk.
func MergeFiles(paths ...string) (*Report, error) {
	readers := make([]io.Reader, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return MergeStreams(readers...)
}
