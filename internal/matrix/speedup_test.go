package matrix

import (
	"runtime"
	"testing"
)

// TestParallelSpeedup measures wall-clock speedup of the worker pool over
// serial execution on the standard sweep. The cells are CPU-bound (key
// generation, signature verification, event simulation), so on ≥ 4 cores
// the pool must beat serial by a wide margin; the acceptance bar is 2×, and
// the test asserts a slightly softer 1.5× to stay robust against noisy CI
// neighbors. Machines with fewer than 4 cores skip — there is nothing to
// measure there (this container may be single-core; CI runners are not).
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-clock measurement in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥ 4 cores to measure speedup, have %d", runtime.GOMAXPROCS(0))
	}
	cells, err := StandardSweep(Seeds(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(cells, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Fingerprint(), parallel.Fingerprint(); s != p {
		t.Fatalf("speedup run diverged from serial: %s vs %s", s, p)
	}
	speedup := float64(serial.WallNS) / float64(parallel.WallNS)
	t.Logf("%d cells: serial %.2fs, parallel %.2fs on %d workers → %.2fx",
		cells.Len(), float64(serial.WallNS)/1e9, float64(parallel.WallNS)/1e9,
		parallel.Parallelism, speedup)
	if speedup < 1.5 {
		t.Errorf("parallel speedup %.2fx below 1.5x on %d workers", speedup, parallel.Parallelism)
	}
}
