package matrix

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
)

// mergeFilesWithStats opens shard files and runs the internal merge,
// returning its scheduler statistics alongside the report.
func mergeFilesWithStats(t *testing.T, paths ...string) (*Report, mergeStats) {
	t.Helper()
	readers := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		readers = append(readers, bufio.NewReaderSize(f, 1<<16))
	}
	rep, stats, err := merge(MergeOptions{}, readers...)
	if err != nil {
		t.Fatal(err)
	}
	return rep, stats
}

// TestMergeAdversarialSplitConstantMemory pins the buffer-pressure scheduler
// on the pathological split the shard-spec routing cannot help with: two
// streams carrying contiguous index blocks (first half / second half) with
// headers that claim no usable shard spec. A round-robin reader would buffer
// the entire second stream (O(cells)) while draining the first; the
// scheduler must keep the total out-of-order buffer at O(streams).
func TestMergeAdversarialSplitConstantMemory(t *testing.T) {
	const n = 2000
	src := errorSweep(t, n)
	mono, err := Run(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mono.Name = "adversarial-split"
	want := mono.Fingerprint()

	dir := t.TempDir()
	var paths []string
	for half := 0; half < 2; half++ {
		pos := make([]int, 0, n/2)
		for i := half * (n / 2); i < (half+1)*(n/2); i++ {
			pos = append(pos, i)
		}
		path := filepath.Join(dir, fmt.Sprintf("block%d.jsonl", half))
		if _, err := RunStreamFile(path, &subsetSource{base: src, pos: pos}, Options{Parallelism: 1}, StreamHeader{
			Name: "adversarial-split", TotalCells: n, // Shard left empty: no routing hint
		}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	rep, stats := mergeFilesWithStats(t, paths...)
	if got := rep.Fingerprint(); got != want {
		t.Fatalf("adversarial merge fingerprint %s, want monolithic %s", got[:16], want[:16])
	}
	if rep.Cells != n {
		t.Fatalf("merged %d cells, want %d", rep.Cells, n)
	}
	const maxBuffered = 8 // O(streams), with slack; a round-robin reader needs ~n/2
	if stats.maxPending > maxBuffered {
		t.Fatalf("adversarial split buffered %d outcomes (want ≤ %d): merge memory grows with cell count", stats.maxPending, maxBuffered)
	}
}

// TestMergeShardRoutingBoundedBuffer pins the routed path: properly
// round-robin-sharded streams merge with an out-of-order buffer bounded by
// the stream count, never by cell count. The shards stream serially so their
// files are strictly position-ordered and the bound is deterministic (a
// parallel shard's window additionally depends on worker skew — how far one
// goroutine ran ahead of another — which the merge cannot undo).
func TestMergeShardRoutingBoundedBuffer(t *testing.T) {
	const n = 3000
	src := errorSweep(t, n)
	dir := t.TempDir()
	var paths []string
	for i := 1; i <= 3; i++ {
		sh := Shard{Index: i, Count: 3}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		if _, err := RunStreamFile(path, sh.Source(src), Options{Parallelism: 1}, StreamHeader{
			Name: "routed", TotalCells: n, Shard: sh.String(),
		}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	rep, stats := mergeFilesWithStats(t, paths...)
	if rep.Cells != n {
		t.Fatalf("merged %d cells, want %d", rep.Cells, n)
	}
	const maxBuffered = 9 // O(streams) with slack
	if stats.maxPending > maxBuffered {
		t.Fatalf("routed merge buffered %d outcomes (want ≤ %d)", stats.maxPending, maxBuffered)
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// testCells builds a small, fast, deterministic sweep exercising two graph
// families, two modes and two seeds (8 cells).
func testCells(t *testing.T) []Cell {
	t.Helper()
	a := Axes{
		Name:   "stream-test",
		Graphs: []graph.Def{def(t, "fig1b"), def(t, "complete:4")},
		Modes:  []core.Mode{core.ModeKnownF, core.ModePermissioned},
		Nets:   []scenario.NetParams{{Kind: scenario.NetSync}},
		Seeds:  []int64{1, 2},
	}
	cells, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// shardStreams runs the sweep as n shards, each streamed to its own buffer.
func shardStreams(t *testing.T, cells []Cell, n int) []*bytes.Buffer {
	t.Helper()
	var bufs []*bytes.Buffer
	for i := 1; i <= n; i++ {
		sh := Shard{Index: i, Count: n}
		buf := &bytes.Buffer{}
		part := sh.Of(cells)
		tr, err := RunStream(CellList(part), Options{Parallelism: 2}, buf, StreamHeader{
			Name:       "stream-test",
			TotalCells: len(cells),
			Shard:      sh.String(),
		})
		if err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
		if tr.CellsRun != len(part) {
			t.Fatalf("shard %s ran %d cells, want %d", sh, tr.CellsRun, len(part))
		}
		bufs = append(bufs, buf)
	}
	return bufs
}

func mergeBufs(t *testing.T, bufs []*bytes.Buffer) *Report {
	t.Helper()
	readers := make([]io.Reader, len(bufs))
	for i, b := range bufs {
		readers[i] = bytes.NewReader(b.Bytes())
	}
	rep, err := MergeStreams(readers...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestShardMergeFingerprint asserts the contract of the sharded pipeline:
// for 1-, 2- and 3-way splits, merging the shard streams reconstructs a
// report with exactly the monolithic run's fingerprint (and identical
// aggregate counters).
func TestShardMergeFingerprint(t *testing.T) {
	cells := testCells(t)
	mono, err := Run(CellList(cells), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	mono.Name = "stream-test"
	want := mono.Fingerprint()
	for _, n := range []int{1, 2, 3} {
		merged := mergeBufs(t, shardStreams(t, cells, n))
		if got := merged.Fingerprint(); got != want {
			t.Errorf("%d-way shard merge fingerprint %s, want monolithic %s", n, got[:16], want[:16])
		}
		if merged.Cells != mono.Cells || merged.Consensus != mono.Consensus ||
			merged.Errors != mono.Errors || merged.TotalMessages != mono.TotalMessages ||
			merged.TotalBytes != mono.TotalBytes {
			t.Errorf("%d-way merge aggregates diverge: %+v vs %+v", n, merged, mono)
		}
	}
}

// TestEmptyShardStreams asserts that a shard with no cells (more shards than
// cells) still emits a valid header+trailer stream, and that merging it with
// the populated shards reproduces the monolithic fingerprint.
func TestEmptyShardStreams(t *testing.T) {
	cells := testCells(t) // 8 cells; 9 shards guarantee an empty one
	mono, err := Run(CellList(cells), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	mono.Name = "stream-test"
	merged := mergeBufs(t, shardStreams(t, cells, 9))
	if got, want := merged.Fingerprint(), mono.Fingerprint(); got != want {
		t.Errorf("9-way (incl. empty shard) merge fingerprint %s, want %s", got[:16], want[:16])
	}
}

// TestShardPartition asserts shards partition the sweep: disjoint, complete,
// index-preserving.
func TestShardPartition(t *testing.T) {
	cells := testCells(t)
	seen := make(map[int]string)
	for i := 1; i <= 3; i++ {
		sh := Shard{Index: i, Count: 3}
		for _, c := range sh.Of(cells) {
			if prev, dup := seen[c.Index]; dup {
				t.Fatalf("cell %d in shards %s and %s", c.Index, prev, sh)
			}
			seen[c.Index] = sh.String()
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("shards cover %d of %d cells", len(seen), len(cells))
	}
}

// TestMergeRejectsIncomplete asserts merge fails loudly on missing shards,
// duplicated shards and truncated streams rather than producing a silently
// wrong report.
func TestMergeRejectsIncomplete(t *testing.T) {
	cells := testCells(t)
	bufs := shardStreams(t, cells, 2)

	if _, err := MergeStreams(bytes.NewReader(bufs[0].Bytes())); err == nil {
		t.Error("merge of 1 of 2 shards succeeded")
	}
	if _, err := MergeStreams(bytes.NewReader(bufs[0].Bytes()), bytes.NewReader(bufs[0].Bytes())); err == nil {
		t.Error("merge of a duplicated shard succeeded")
	}
	raw := bufs[0].Bytes()
	truncated := raw[:bytes.LastIndexByte(raw[:len(raw)-1], '\n')+1] // drop the trailer line
	if _, err := MergeStreams(bytes.NewReader(truncated), bytes.NewReader(bufs[1].Bytes())); err == nil {
		t.Error("merge of a truncated shard stream succeeded")
	}
}

// normalizeForGolden zeroes the wall-clock fields — the only nondeterministic
// bytes in a report — so the JSON rendering is stable across machines.
func normalizeForGolden(rep *Report) {
	rep.WallNS = 0
	rep.Parallelism = 0
	for i := range rep.Outcomes {
		rep.Outcomes[i].WallNS = 0
	}
}

// TestMergedReportGolden locks the merged report's full JSON rendering
// (fingerprint included) against a golden file: any drift in cell grading,
// aggregation, fingerprinting or JSON shape shows up as a readable diff.
// Regenerate with `go test ./internal/matrix -run Golden -update` after an
// intentional engine or report change.
func TestMergedReportGolden(t *testing.T) {
	cells := testCells(t)
	for _, n := range []int{2, 3} {
		merged := mergeBufs(t, shardStreams(t, cells, n))
		normalizeForGolden(merged)
		raw, err := merged.JSON()
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, '\n')
		// The golden file is split-count independent: 2- and 3-way merges
		// must render byte-identically.
		golden := filepath.Join("testdata", "merged_report.golden.json")
		if *update && n == 2 {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("%d-way merged report diverges from golden file %s:\n%s", n, golden, diffHint(want, raw))
		}
	}
}

// diffHint points at the first diverging line of two JSON renderings.
func diffHint(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "line " + strconv.Itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	return "length differs: " + strconv.Itoa(len(wl)) + " vs " + strconv.Itoa(len(gl)) + " lines"
}
