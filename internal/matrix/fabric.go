package matrix

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The distributed sweep fabric runs one sweep across a fleet of workers.
// The wire protocol is the JSONL stream format unchanged: the coordinator
// dispatches Tasks (a Span of the sweep, or an explicit cell-index list when
// back-filling a failure's gaps), each worker runs its slice with the same
// RunStream every single-machine shard run uses, and the coordinator spools
// the streams to disk and folds them through the cursor-based Merge — so the
// distributed fingerprint is byte-identical to the monolithic run's by the
// same argument that shard merges are.

// Task is one unit of fabric work: a span of the sweep, or — after a worker
// failure left scattered holes — an explicit list of global cell indices.
type Task struct {
	// Span is the slice of the sweep to run (ignored when Cells is set).
	Span Span
	// Cells, when non-nil, lists the exact global cell indices to run
	// (ascending). Gap back-fill after a partial worker failure; always a
	// bounded set (the dead worker's claim window), never O(cells).
	Cells []int
	// attempt counts how many dispatches this task's lineage has consumed;
	// the coordinator aborts rather than retry forever.
	attempt int
	// resumeSpool, when set, asks the worker to complete this torn spool
	// file in place instead of streaming afresh (shared-filesystem fleets).
	resumeSpool string
	// notBefore delays the dispatch of a recovery task: the jittered
	// exponential backoff that keeps a flapping worker from burning the
	// lineage's attempt budget in milliseconds. Zero means immediately
	// eligible.
	notBefore time.Time
}

// spec renders the header spec the task's stream will carry: the span spec,
// or "cells:a,b,c" for explicit-index tasks (not a span — the merge
// scheduler treats such streams as unknown-ownership, which is correct: gap
// streams are small and scheduled by buffer pressure).
func (t Task) spec() string {
	if t.Cells != nil {
		return "cells:" + FormatCellList(t.Cells)
	}
	return t.Span.String()
}

// expected lists the global cell indices the task's stream must supply,
// ascending.
func (t Task) expected(total int) []int {
	if t.Cells != nil {
		return t.Cells
	}
	return t.Span.Globals(total)
}

// WorkerArgs renders the CLI flags that make a worker run exactly this task:
// the fabric's half of the worker protocol. Every worker-capable CLI
// (sweepd -worker, experiments -matrix, cupsim sweeps) accepts them via the
// shared StreamJob plumbing.
func (t Task) WorkerArgs(jsonl string, resume bool) []string {
	var args []string
	if t.Cells != nil {
		args = append(args, "-only", FormatCellList(t.Cells))
	} else if !t.Span.IsAll() {
		args = append(args, "-shard", t.Span.String())
	}
	args = append(args, "-jsonl", jsonl)
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// FormatCellList renders global cell indices as the comma-separated -only
// flag value.
func FormatCellList(cells []int) string {
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// ParseCellList parses the -only flag value: comma-separated global cell
// indices, returned sorted ascending with duplicates rejected.
func ParseCellList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	cells := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad cell list %q (want comma-separated indices ≥ 0)", s)
		}
		cells = append(cells, n)
	}
	sort.Ints(cells)
	for i := 1; i < len(cells); i++ {
		if cells[i] == cells[i-1] {
			return nil, fmt.Errorf("bad cell list %q: duplicate index %d", s, cells[i])
		}
	}
	return cells, nil
}

// cellSubset is the lazy view of an explicit global-index list. Like
// Shard.Source it requires a whole-sweep base, where positions and global
// indices coincide.
func cellSubset(base CellSource, cells []int) (CellSource, error) {
	total := base.Len()
	if total > 0 && (base.Index(0) != 0 || base.Index(total-1) != total-1) {
		return nil, fmt.Errorf("matrix: cell subset needs a whole-sweep base (Index(i)==i)")
	}
	if len(cells) > 0 && cells[len(cells)-1] >= total {
		return nil, fmt.Errorf("matrix: cell index %d out of range (sweep has %d cells)", cells[len(cells)-1], total)
	}
	return &subsetSource{base: base, pos: cells}, nil
}

// Transport launches one worker per Run call. Implementations must stream
// the worker's JSONL output to sink as it is produced (the coordinator's
// heartbeat watches sink activity), kill the worker when ctx is cancelled,
// and return only once the worker has exited and sink will see no further
// writes.
type Transport interface {
	Run(ctx context.Context, task Task, sink io.Writer) error
}

// SpoolResumer is the optional second half of the worker protocol for
// transports whose workers share the coordinator's filesystem: ResumeSpool
// completes a torn spool file in place (the worker scans it, truncates the
// torn tail, runs only the missing cells and seals the stream with a
// trailer). When every transport in a fleet implements it, a dead worker's
// partial stream is finished by another worker instead of being sealed and
// re-specced.
type SpoolResumer interface {
	ResumeSpool(ctx context.Context, task Task, spool string) error
}

// ExecTransport runs workers as local subprocesses: the default, fully
// testable fabric backend. Argv is the worker command prefix (binary plus
// its sweep-selection flags); the task flags are appended per dispatch.
type ExecTransport struct {
	// Argv is the worker command: Argv[0] is the binary, the rest its base
	// flags (sweep selection, parallelism). Task flags are appended.
	Argv []string
}

// Run implements Transport.
func (t ExecTransport) Run(ctx context.Context, task Task, sink io.Writer) error {
	return t.exec(ctx, task.WorkerArgs("-", false), sink)
}

// ResumeSpool implements SpoolResumer: local subprocesses share the
// coordinator's filesystem, so the worker completes the spool in place.
func (t ExecTransport) ResumeSpool(ctx context.Context, task Task, spool string) error {
	return t.exec(ctx, task.WorkerArgs(spool, true), io.Discard)
}

func (t ExecTransport) exec(ctx context.Context, taskArgs []string, sink io.Writer) error {
	if len(t.Argv) == 0 {
		return fmt.Errorf("fabric: ExecTransport needs a worker command")
	}
	args := append(append([]string{}, t.Argv[1:]...), taskArgs...)
	cmd := exec.CommandContext(ctx, t.Argv[0], args...)
	cmd.Stdout = sink
	stderr := &tailBuffer{limit: 2048}
	cmd.Stderr = stderr
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Run(); err != nil {
		if msg := stderr.String(); msg != "" {
			return fmt.Errorf("fabric: worker %s: %w: %s", t.Argv[0], err, msg)
		}
		return fmt.Errorf("fabric: worker %s: %w", t.Argv[0], err)
	}
	return nil
}

// tailBuffer retains the last limit bytes written — enough of a worker's
// stderr to attribute a failure without buffering a chatty worker's logs.
type tailBuffer struct {
	buf   []byte
	limit int
}

// Write implements io.Writer.
func (t *tailBuffer) Write(p []byte) (int, error) {
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.limit {
		t.buf = t.buf[len(t.buf)-t.limit:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string { return strings.TrimSpace(string(t.buf)) }

// SSHTransport runs workers over ssh in batch mode: the same worker argv,
// quoted through a remote shell. It does not implement SpoolResumer — a
// remote worker cannot complete a coordinator-local spool, so failures on
// SSH fleets recover via seal-and-resplit instead.
type SSHTransport struct {
	// Host is the ssh destination (user@host or a ssh_config alias).
	Host string
	// Argv is the remote worker command, as for ExecTransport.
	Argv []string
	// SSHArgs are extra ssh client flags (port, identity, …).
	SSHArgs []string
}

// Run implements Transport.
func (t SSHTransport) Run(ctx context.Context, task Task, sink io.Writer) error {
	if t.Host == "" || len(t.Argv) == 0 {
		return fmt.Errorf("fabric: SSHTransport needs a host and a worker command")
	}
	remote := make([]string, 0, len(t.Argv)+4)
	for _, a := range append(append([]string{}, t.Argv...), task.WorkerArgs("-", false)...) {
		remote = append(remote, shellQuote(a))
	}
	args := append([]string{"-o", "BatchMode=yes"}, t.SSHArgs...)
	args = append(args, t.Host, strings.Join(remote, " "))
	exec := ExecTransport{Argv: append([]string{"ssh"}, args...)}
	return exec.exec(ctx, nil, sink)
}

// shellQuote single-quotes one argument for the remote shell.
func shellQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}

// ProcTransport runs workers in-process: the zero-overhead backend tests
// and benchmarks use, and the reference Transport implementation. Run does
// not observe ctx mid-sweep (cells are short; a kill takes effect at the
// next dispatch), which is fine for the clean paths it serves — fault
// injection wraps it.
type ProcTransport struct {
	// Name labels the sweep in stream headers (all workers must agree).
	Name string
	// Src is the whole sweep.
	Src CellSource
	// Opts are the per-worker run options.
	Opts Options
}

// Run implements Transport.
func (t ProcTransport) Run(ctx context.Context, task Task, sink io.Writer) error {
	return ServeTask(t.Name, t.Src, t.Opts, task, sink)
}

// ResumeSpool implements SpoolResumer.
func (t ProcTransport) ResumeSpool(ctx context.Context, task Task, spool string) error {
	part, spec, err := task.slice(t.Src)
	if err != nil {
		return err
	}
	hdr := StreamHeader{Name: t.Name, TotalCells: t.Src.Len(), Shard: spec}
	_, _, err = ResumeStreamFile(spool, part, t.Opts, hdr)
	return err
}

// slice resolves the task against the whole sweep: the lazy sub-source to
// run and the header spec labelling it.
func (t Task) slice(src CellSource) (CellSource, string, error) {
	if t.Cells != nil {
		part, err := cellSubset(src, t.Cells)
		if err != nil {
			return nil, "", err
		}
		return part, t.spec(), nil
	}
	return t.Span.Source(src), t.spec(), nil
}

// ServeTask runs one fabric task in-process against the given sweep,
// writing the worker-protocol JSONL stream to w — the in-process counterpart
// of dispatching a `-worker` subprocess. ProcTransport and the CLI worker
// modes are built on it.
func ServeTask(name string, src CellSource, opts Options, task Task, w io.Writer) error {
	part, spec, err := task.slice(src)
	if err != nil {
		return err
	}
	hdr := StreamHeader{Name: name, TotalCells: src.Len(), Shard: spec}
	_, err = RunStream(part, opts, w, hdr)
	return err
}

// sealStreamFile turns a torn spool (header plus some outcomes, no trailer,
// possibly a torn final line) into a valid partial stream: the torn tail is
// dropped, the header's ShardCells is rewritten to the outcomes actually
// present, and a trailer summarizing them is appended. The sealed stream
// merges like any other shard file; the coordinator back-fills the cells it
// no longer claims through gap and tail tasks. Returns the outcomes kept.
func sealStreamFile(path string) (int, error) {
	scan, err := scanStreamFile(path)
	if err != nil {
		return 0, err
	}
	if scan.header == nil {
		return 0, fmt.Errorf("seal %s: no header", path)
	}
	if scan.trailer != nil {
		// Already closed; nothing to seal.
		return len(scan.done), nil
	}
	src, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	tmp := path + ".seal"
	dst, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(dst)
	enc := json.NewEncoder(bw)
	hdr := *scan.header
	hdr.ShardCells = len(scan.done)
	werr := enc.Encode(streamRecord{Type: "header", Header: &hdr})
	if werr == nil {
		if _, err := src.Seek(scan.headerEnd, io.SeekStart); err != nil {
			werr = err
		}
	}
	if werr == nil {
		_, werr = io.Copy(bw, io.LimitReader(src, scan.offset-scan.headerEnd))
	}
	if werr == nil {
		tr := StreamTrailer{CellsRun: len(scan.done), Errors: scan.errors, Consensus: scan.consensus}
		werr = enc.Encode(streamRecord{Type: "trailer", Trailer: &tr})
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := dst.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("seal %s: %w", path, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return len(scan.done), nil
}
