// Package matrix is the scenario-matrix engine: it sweeps experiment axes
// (graph family × protocol mode × network model × Byzantine placement ×
// fault threshold × seed) as a lazy cross-product of scenario parameters —
// a CellSource computes cell i of n on demand — and executes the cells on a
// worker pool, one deterministic simulation engine per cell, parallelism
// bounded by GOMAXPROCS. Every cell is graded against the four consensus
// properties (Agreement, Validity, Integrity, Termination) and folded
// through an incremental Aggregator into a Report with per-axis statistics,
// a deterministic fingerprint (serial, parallel, sharded-merged and resumed
// execution provably agree) and JSON / text renderings. Shards stream
// per-cell JSONL (RunStream), merge back into the monolithic report
// (Merge), and resume after interruption (ResumeStreamFile); every stage is
// streaming, so per-shard memory is O(axes + parallelism) regardless of
// cell count.
//
// The paper's tables and figures are fixed points of this engine (see
// FromExperiments); sweeps beyond the paper — more seeds, bigger random
// graphs, adversarial placements — are new axis values, not new code.
package matrix

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Axes describes one parameter sweep. Empty axes default to a single
// neutral value, so callers only set the dimensions they sweep.
type Axes struct {
	// Name labels the resulting report.
	Name string
	// Graphs are the knowledge-connectivity-graph families to sweep.
	Graphs []graph.Def
	// Modes are the committee-identification protocols.
	Modes []core.Mode
	// Nets are the network models. Async cells automatically stretch the
	// discovery/poll periods (the non-terminating runs would otherwise
	// generate unbounded gossip volume).
	Nets []scenario.NetParams
	// Byz are the automatic Byzantine placements (default: none).
	Byz []scenario.AutoByz
	// F are the fault thresholds handed to processes; -1 means the graph
	// family's natural threshold (default: [-1]).
	F []int
	// Faults are the chaos fault-injection points (default: one zero value,
	// i.e. no injection — the axis then contributes nothing to cell IDs or
	// fingerprints).
	Faults []scenario.FaultParams
	// Seeds are the simulation seeds; each seed also drives random graph
	// generation for generator-family cells (default: [1]).
	Seeds []int64
	// Horizon bounds every run (default 60 virtual seconds).
	Horizon sim.Time
}

// Cell is one expanded point of the sweep.
type Cell struct {
	// Index is the cell's position in expansion order; aggregation is
	// performed in this order regardless of execution order, which is what
	// makes parallel, serial and sharded runs produce identical reports.
	Index int
	// Params is the fully data-driven scenario this cell runs.
	Params scenario.Params
	// Expect carries the paper's prediction when the cell comes from the
	// reproduction suite; nil for free sweeps.
	Expect *scenario.Expect
}

// ID returns the stable cell identifier.
func (c Cell) ID() string { return c.Params.ID() }

func orDefault[T any](vals []T, def T) []T {
	if len(vals) == 0 {
		return []T{def}
	}
	return vals
}

// Size returns the number of cells Expand will produce.
func (a Axes) Size() int {
	if len(a.Graphs) == 0 {
		return 0
	}
	n := len(a.Graphs)
	n *= len(orDefault(a.Modes, core.ModeUnknownF))
	n *= len(orDefault(a.Nets, scenario.NetParams{}))
	n *= len(orDefault(a.Byz, scenario.AutoByz{}))
	n *= len(orDefault(a.F, -1))
	n *= len(orDefault(a.Faults, scenario.FaultParams{}))
	n *= len(orDefault(a.Seeds, 1))
	return n
}

// Expand materializes the whole cross-product eagerly (same cells, same
// order as Source), additionally rejecting every cell that cannot
// materialize (e.g. a generator spec too small for its connectivity) with a
// precise error before anything runs. Use it for small sweeps where eager
// validation is worth a pass over every cell; the pipeline itself runs on
// the lazy Source.
func (a Axes) Expand() ([]Cell, error) {
	src, err := a.Source()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, src.Len())
	for i := range cells {
		c := src.Cell(i)
		if _, err := c.Params.Spec(); err != nil {
			return nil, fmt.Errorf("matrix %q cell %d: %w", a.Name, i, err)
		}
		cells[i] = c
	}
	return cells, nil
}

// FromExperiments wraps the reproduction suite's experiments as matrix
// cells, carrying the paper's predictions into the report.
func FromExperiments(exps []scenario.Experiment) CellList {
	cells := make(CellList, 0, len(exps))
	for _, exp := range exps {
		exp := exp
		p := exp.Params
		p.Name = exp.ID
		cells = append(cells, Cell{Index: len(cells), Params: p, Expect: &exp.Expect})
	}
	return cells
}
