// Package matrix is the scenario-matrix engine: it expands experiment axes
// (graph family × protocol mode × network model × Byzantine placement ×
// fault threshold × seed) into the cross-product of scenario parameters and
// executes the cells on a worker pool — one deterministic simulation engine
// per cell, parallelism bounded by GOMAXPROCS. Every cell is graded against
// the four consensus properties (Agreement, Validity, Integrity,
// Termination) and aggregated into a Report with per-axis statistics, a
// deterministic fingerprint (serial and parallel execution provably agree)
// and JSON / text renderings.
//
// The paper's tables and figures are fixed points of this engine (see
// FromExperiments); sweeps beyond the paper — more seeds, bigger random
// graphs, adversarial placements — are new axis values, not new code.
package matrix

import (
	"fmt"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/scenario"
	"github.com/bftcup/bftcup/internal/sim"
)

// Axes describes one parameter sweep. Empty axes default to a single
// neutral value, so callers only set the dimensions they sweep.
type Axes struct {
	// Name labels the resulting report.
	Name string
	// Graphs are the knowledge-connectivity-graph families to sweep.
	Graphs []graph.Def
	// Modes are the committee-identification protocols.
	Modes []core.Mode
	// Nets are the network models. Async cells automatically stretch the
	// discovery/poll periods (the non-terminating runs would otherwise
	// generate unbounded gossip volume).
	Nets []scenario.NetParams
	// Byz are the automatic Byzantine placements (default: none).
	Byz []scenario.AutoByz
	// F are the fault thresholds handed to processes; -1 means the graph
	// family's natural threshold (default: [-1]).
	F []int
	// Seeds are the simulation seeds; each seed also drives random graph
	// generation for generator-family cells (default: [1]).
	Seeds []int64
	// Horizon bounds every run (default 60 virtual seconds).
	Horizon sim.Time
}

// Cell is one expanded point of the sweep.
type Cell struct {
	// Index is the cell's position in expansion order; aggregation is
	// performed in this order regardless of execution order, which is what
	// makes parallel, serial and sharded runs produce identical reports.
	Index int
	// Params is the fully data-driven scenario this cell runs.
	Params scenario.Params
	// Expect carries the paper's prediction when the cell comes from the
	// reproduction suite; nil for free sweeps.
	Expect *scenario.Expect
}

// ID returns the stable cell identifier.
func (c Cell) ID() string { return c.Params.ID() }

func orDefault[T any](vals []T, def T) []T {
	if len(vals) == 0 {
		return []T{def}
	}
	return vals
}

// Size returns the number of cells Expand will produce.
func (a Axes) Size() int {
	if len(a.Graphs) == 0 {
		return 0
	}
	n := len(a.Graphs)
	n *= len(orDefault(a.Modes, core.ModeUnknownF))
	n *= len(orDefault(a.Nets, scenario.NetParams{}))
	n *= len(orDefault(a.Byz, scenario.AutoByz{}))
	n *= len(orDefault(a.F, -1))
	n *= len(orDefault(a.Seeds, 1))
	return n
}

// Expand produces the cross-product of the axes in deterministic order
// (graphs outermost, seeds innermost). Cells that cannot materialize (e.g. a
// generator spec too small for its connectivity) surface as errors here, not
// at run time.
func (a Axes) Expand() ([]Cell, error) {
	graphs := a.Graphs
	if len(graphs) == 0 {
		return nil, fmt.Errorf("matrix %q: no graph axis", a.Name)
	}
	modes := orDefault(a.Modes, core.ModeUnknownF)
	nets := orDefault(a.Nets, scenario.NetParams{Kind: scenario.NetSync})
	byz := orDefault(a.Byz, scenario.AutoByz{})
	fs := orDefault(a.F, -1)
	seeds := orDefault(a.Seeds, 1)
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = 60 * sim.Second
	}

	cells := make([]Cell, 0, a.Size())
	for _, g := range graphs {
		for _, mode := range modes {
			for _, net := range nets {
				for _, b := range byz {
					for _, f := range fs {
						for _, seed := range seeds {
							p := scenario.Params{
								Graph:         g,
								Mode:          mode,
								F:             f,
								Auto:          b,
								Net:           net,
								Horizon:       horizon,
								Seed:          seed,
								SlowDiscovery: net.Kind == scenario.NetAsync,
							}
							p.Name = p.ID()
							// Materialize once to reject impossible cells
							// early with a precise error.
							if _, err := p.Spec(); err != nil {
								return nil, fmt.Errorf("matrix %q cell %d: %w", a.Name, len(cells), err)
							}
							cells = append(cells, Cell{Index: len(cells), Params: p})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// FromExperiments wraps the reproduction suite's experiments as matrix
// cells, carrying the paper's predictions into the report.
func FromExperiments(exps []scenario.Experiment) []Cell {
	cells := make([]Cell, 0, len(exps))
	for _, exp := range exps {
		exp := exp
		p := exp.Params
		p.Name = exp.ID
		cells = append(cells, Cell{Index: len(cells), Params: p, Expect: &exp.Expect})
	}
	return cells
}
