// Package bftcup is a from-scratch implementation of Byzantine fault-tolerant
// consensus with unknown participants (BFT-CUP) and its extension to an
// unknown fault threshold (BFT-CUPFT), reproducing Heydari, Vassantlal and
// Bessani, "Knowledge Connectivity Requirements for Solving BFT Consensus
// with Unknown Participants and Fault Threshold" (ICDCS 2024).
//
// Each process joins the system knowing only a subset of participants (its
// participant detector); the union of that knowledge forms a directed
// knowledge connectivity graph. The library provides:
//
//   - model checkers for the paper's graph requirements: k-OSR PD (BFT-CUP,
//     Theorem 1) and extended k-OSR PD (BFT-CUPFT, Definition 2);
//   - the full protocol stack — signed Discovery, the Sink algorithm (known
//     fault threshold), the Core algorithm (unknown fault threshold) and a
//     PBFT committee phase with the generalized quorum ⌈(|S|+f+1)/2⌉ —
//     runnable live on goroutines (System) or on a deterministic
//     discrete-event simulator (Simulate);
//   - the paper's figure topologies and random topology generators;
//   - chained (multi-block) consensus over a bootstrapped committee.
//
// Quick start:
//
//	topo := bftcup.Figure1b()
//	sys, err := bftcup.NewSystem(bftcup.SystemConfig{
//		Topology: topo,
//		Protocol: bftcup.ProtocolBFTCUPFT,
//		Exclude:  []bftcup.ID{4}, // the Byzantine process stays silent
//	})
//	...
//	sys.Start()
//	err = sys.WaitAll(ctx)
//	fmt.Println(sys.DecisionOf(1, 0))
package bftcup

import (
	"fmt"
	"sort"

	"github.com/bftcup/bftcup/internal/graph"
	"github.com/bftcup/bftcup/internal/kosr"
	"github.com/bftcup/bftcup/internal/model"
)

// ID identifies a process; IDs are Sybil-proof by assumption.
type ID = model.ID

// Value is an opaque consensus proposal.
type Value = model.Value

// Protocol selects how processes identify the consensus committee.
type Protocol int

// Protocols.
const (
	// ProtocolBFTCUP is the authenticated BFT-CUP model: every process knows
	// the fault threshold f (Section III of the paper).
	ProtocolBFTCUP Protocol = iota
	// ProtocolBFTCUPFT is the paper's contribution: no process knows f
	// (Sections V-VI).
	ProtocolBFTCUPFT
	// ProtocolPermissioned is the classic setting: full membership and f
	// known; the committee phase runs directly.
	ProtocolPermissioned
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolBFTCUP:
		return "bft-cup"
	case ProtocolBFTCUPFT:
		return "bft-cupft"
	case ProtocolPermissioned:
		return "permissioned"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Topology is a knowledge connectivity graph in adjacency form: Topology[i]
// lists the processes i initially knows (its participant detector).
type Topology map[ID][]ID

// Graph converts the topology to the internal digraph.
func (t Topology) graph() *graph.Digraph {
	g := graph.New()
	for u, outs := range t {
		g.AddNode(u)
		for _, v := range outs {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Processes returns every process mentioned by the topology, ascending.
func (t Topology) Processes() []ID {
	set := model.NewIDSet()
	for u, outs := range t {
		set.Add(u)
		for _, v := range outs {
			set.Add(v)
		}
	}
	return set.Sorted()
}

// Clone returns an independent copy.
func (t Topology) Clone() Topology {
	c := make(Topology, len(t))
	for u, outs := range t {
		c[u] = append([]ID(nil), outs...)
	}
	return c
}

// CheckResult reports whether a topology satisfies a model's requirements.
type CheckResult struct {
	// OK reports whether the requirements hold.
	OK bool
	// Reason explains a failure (empty when OK).
	Reason string
	// Committee is the sink (BFT-CUP) or core (BFT-CUPFT) of the safe
	// subgraph when OK.
	Committee []ID
	// CommitteeThreshold is f_G(committee) for BFT-CUPFT checks.
	CommitteeThreshold int
}

// CheckBFTCUP verifies Theorem 1: the safe subgraph (topology minus the
// Byzantine processes) must be (f+1)-OSR with a sink of ≥ 2f+1 processes.
func CheckBFTCUP(t Topology, byzantine []ID, f int) CheckResult {
	r := graph.CheckBFTCUP(t.graph(), model.NewIDSet(byzantine...), f)
	out := CheckResult{OK: r.OK, Reason: r.Reason}
	if r.OK {
		out.Committee = r.Sink.Sorted()
		out.CommitteeThreshold = f
	}
	return out
}

// CheckBFTCUPFT verifies the BFT-CUPFT requirements (Section V): the safe
// subgraph must be extended (f+1)-OSR with a core of ≥ 2f+1 processes.
func CheckBFTCUPFT(t Topology, byzantine []ID, f int) CheckResult {
	r := kosr.CheckBFTCUPFT(t.graph(), model.NewIDSet(byzantine...), f)
	out := CheckResult{OK: r.OK, Reason: r.Reason}
	if r.OK {
		out.Committee = r.Core.Sorted()
		out.CommitteeThreshold = r.FG
	}
	return out
}

// topologyOf converts an internal digraph to the public form.
func topologyOf(g *graph.Digraph) Topology {
	t := make(Topology, g.NumNodes())
	for _, u := range g.Nodes() {
		t[u] = g.Out(u)
	}
	return t
}

// Figure1a returns the paper's Fig. 1a reconstruction: a graph that violates
// the BFT-CUP requirements (Byzantine 4 is the only knowledge bridge).
func Figure1a() Topology { return topologyOf(graph.Fig1a().G) }

// Figure1b returns Fig. 1b: a BFT-CUP-valid graph with f = 1 and Byzantine
// process 4; the committee is {1,2,3,4}.
func Figure1b() Topology { return topologyOf(graph.Fig1b().G) }

// Figure2c returns Fig. 2c (system AB of the Theorem 7 impossibility proof).
func Figure2c() Topology { return topologyOf(graph.Fig2c().G) }

// Figure3a returns Fig. 3a: a BFT-CUP-valid graph whose non-sink members can
// falsely declare themselves a sink when f is unknown.
func Figure3a() Topology { return topologyOf(graph.Fig3a().G) }

// Figure4a returns Fig. 4a: an extended k-OSR graph (BFT-CUPFT-valid) whose
// core {1,2,3,4} differs from the full graph's sink component.
func Figure4a() Topology { return topologyOf(graph.Fig4a().G) }

// Figure4b returns Fig. 4b: an extended k-OSR graph whose core equals the
// sink ({8..15}), tolerating f = 2 without any process knowing it.
func Figure4b() Topology { return topologyOf(graph.Fig4b().G) }

// RandomKOSR generates a topology whose safe subgraph is (f+1)-OSR with a
// planted sink of sinkSize processes (IDs 1..sinkSize), suitable for
// ProtocolBFTCUP with the given f.
func RandomKOSR(seed int64, sinkSize, nonSinkSize, f int) (Topology, []ID, error) {
	g, sink, err := graph.GenKOSR(newRand(seed), graph.GenSpec{
		SinkSize:    sinkSize,
		NonSinkSize: nonSinkSize,
		K:           f + 1,
		ExtraEdgeP:  0.15,
	})
	if err != nil {
		return nil, nil, err
	}
	return topologyOf(g), sink.Sorted(), nil
}

// RandomExtendedKOSR generates a BFT-CUPFT-valid topology with a planted core
// of coreSize processes (IDs 1..coreSize).
func RandomExtendedKOSR(seed int64, coreSize, nonCoreSize int) (Topology, []ID, error) {
	g, core, _, err := graph.GenExtendedKOSR(newRand(seed), graph.GenSpec{
		SinkSize:    coreSize,
		NonSinkSize: nonCoreSize,
		ExtraEdgeP:  0.15,
	})
	if err != nil {
		return nil, nil, err
	}
	return topologyOf(g), core.Sorted(), nil
}

// sortIDs sorts a slice of IDs in place and returns it.
func sortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
