// Committee: the blockchain-flavored workload that motivates the paper's
// hybrid setting. Processes join knowing only a few peers, bootstrap the
// consensus committee with BFT-CUPFT (nobody is told the fault threshold),
// and then commit a chain of blocks over the same committee — members run
// the committee protocol, everyone else learns each block by polling.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/bftcup/bftcup"
)

const blocks = 5

func main() {
	// A 12-process network: a densely connected core of 7 "validators" plus
	// 5 edge processes, generated to satisfy the BFT-CUPFT requirements.
	topo, plantedCore, err := bftcup.RandomExtendedKOSR(42, 7, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d processes; planted core %v\n", len(topo.Processes()), plantedCore)
	check := bftcup.CheckBFTCUPFT(topo, nil, 1)
	if !check.OK {
		log.Fatalf("topology rejected: %s", check.Reason)
	}
	fmt.Printf("BFT-CUPFT requirements hold: core %v, committee threshold g=%d\n\n",
		check.Committee, check.CommitteeThreshold)

	sys, err := bftcup.NewSystem(bftcup.SystemConfig{
		Topology: topo,
		Protocol: bftcup.ProtocolBFTCUPFT,
		Blocks:   blocks,
		ProposalFor: func(id bftcup.ID, block int) bftcup.Value {
			return bftcup.Value(fmt.Sprintf("block#%d{txs from p%d}", block, id))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	sys.Start()

	// Stream decisions as they land.
	go func() {
		for d := range sys.Events() {
			if d.Process == 1 {
				fmt.Printf("  committed %-28q as block %d\n", d.Value, d.Block)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sys.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}

	// Verify every process holds the same chain.
	all := sys.Decisions()
	ref := all[1]
	for _, id := range sys.Started() {
		for b := 0; b < blocks; b++ {
			if !all[id][b].Equal(ref[b]) {
				log.Fatalf("chain divergence at p%d block %d", id, b)
			}
		}
	}
	committee, _ := sys.CommitteeOf(1)
	fmt.Printf("\nall %d processes agree on all %d blocks; committee was %v\n",
		len(sys.Started()), blocks, committee)
	fmt.Printf("%d messages, %d bytes\n", sys.Messages(), sys.Bytes())
}
