// Impossibility: reproduce Theorem 7 interactively. System AB (the paper's
// Fig. 2c) satisfies the plain BFT-CUP graph requirements with f = 0, every
// process is correct — yet when no process knows the fault threshold, an
// indistinguishability schedule makes {1,2,3} decide "v" while {6,7,8}
// decide "u": Agreement is violated, which is why BFT-CUPFT needs the
// extended knowledge connectivity of Definition 2.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bftcup/bftcup"
)

func main() {
	topo := bftcup.Figure2c()

	// The graph passes the BFT-CUP check (f = 0, all correct)...
	cup := bftcup.CheckBFTCUP(topo, nil, 0)
	fmt.Printf("BFT-CUP requirements (f=0): OK=%v, sink=%v\n", cup.OK, cup.Committee)
	// ...but fails the BFT-CUPFT check: two sinks share the maximum
	// connectivity, so no unique core exists.
	ft := bftcup.CheckBFTCUPFT(topo, nil, 0)
	fmt.Printf("BFT-CUPFT requirements    : OK=%v (%s)\n\n", ft.OK, ft.Reason)

	proposals := map[bftcup.ID]bftcup.Value{}
	for _, id := range []bftcup.ID{1, 2, 3, 4} {
		proposals[id] = bftcup.Value("v")
	}
	for _, id := range []bftcup.ID{5, 6, 7, 8} {
		proposals[id] = bftcup.Value("u")
	}

	report, err := bftcup.Simulate(bftcup.SimOptions{
		Topology:  topo,
		Protocol:  bftcup.ProtocolBFTCUPFT, // nobody knows f
		Proposals: proposals,
		Network: bftcup.Network{
			Kind: bftcup.NetworkPartiallySynchronous,
			GST:  30 * time.Second,
			// Before GST only the two islands communicate internally —
			// exactly the Theorem 7 indistinguishability schedule.
			SlowGroups: [][]bftcup.ID{{1, 2, 3}, {6, 7, 8}},
		},
		Horizon: 90 * time.Second,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("simulated execution:")
	for _, id := range topo.Processes() {
		if v, ok := report.Decisions[id]; ok {
			fmt.Printf("  p%d decided %q  (committee %v)\n", id, v, report.Committees[id])
		} else {
			fmt.Printf("  p%d undecided\n", id)
		}
	}
	fmt.Printf("\nagreement: %v — %s\n", report.Agreement, report.FailureMode)
	if report.Agreement {
		log.Fatal("expected the Theorem 7 violation; the schedule failed to reproduce it")
	}
	fmt.Println("\nTheorem 7 reproduced: without the fault threshold, the BFT-CUP")
	fmt.Println("knowledge requirements are insufficient — the extended k-OSR graphs")
	fmt.Println("of BFT-CUPFT (e.g. Figure4a) restore safety.")
}
