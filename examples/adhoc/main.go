// Adhoc: the self-organizing-network workload from the CUP line of work
// (Cavin et al.): nodes of an ad-hoc mesh join knowing only their immediate
// contacts, one member silently fails, and the rest still agree — without
// anyone being configured with the system size or the fault threshold.
// Artificial per-link latency exercises the live runtime's delay paths.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/bftcup/bftcup"
)

func main() {
	// A 10-node mesh with a 5-node well-connected backbone.
	topo, backbone, err := bftcup.RandomExtendedKOSR(7, 5, 5)
	if err != nil {
		log.Fatal(err)
	}
	// One backbone node fails silently; with |core| = 5 the network
	// tolerates f = 2 — and crucially, nobody needs to know that number.
	failed := backbone[len(backbone)-1]
	check := bftcup.CheckBFTCUPFT(topo, []bftcup.ID{failed}, 1)
	if !check.OK {
		log.Fatalf("mesh rejected: %s", check.Reason)
	}
	fmt.Printf("mesh of %d nodes, backbone %v, silent failure: p%d\n",
		len(topo.Processes()), backbone, failed)

	sys, err := bftcup.NewSystem(bftcup.SystemConfig{
		Topology: topo,
		Protocol: bftcup.ProtocolBFTCUPFT,
		Exclude:  []bftcup.ID{failed},
		Latency: func(from, to bftcup.ID) time.Duration {
			// Rough "radio distance": farther IDs are slower.
			d := int64(from) - int64(to)
			if d < 0 {
				d = -d
			}
			return time.Duration(1+d) * time.Millisecond
		},
		Proposals: map[bftcup.ID]bftcup.Value{
			1: bftcup.Value("rendezvous@grid-17"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	sys.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	if err := sys.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	ref, _ := sys.DecisionOf(sys.Started()[0], 0)
	for _, id := range sys.Started() {
		v, _ := sys.DecisionOf(id, 0)
		if !v.Equal(ref) {
			log.Fatalf("agreement violated at p%d", id)
		}
	}
	committee, _ := sys.CommitteeOf(sys.Started()[0])
	fmt.Printf("all %d live nodes agreed on %q in %v\n", len(sys.Started()), ref, elapsed.Round(time.Millisecond))
	fmt.Printf("discovered committee: %v (the failed p%d is carried as a silent member)\n", committee, failed)
}
