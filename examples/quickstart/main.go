// Quickstart: solve consensus on the paper's Fig. 1b knowledge graph with
// the authenticated BFT-CUP protocol (known fault threshold f = 1), running
// live on goroutines. The Byzantine process 4 stays silent; the committee
// {1,2,3,4} is discovered anyway and every correct process decides the same
// value.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/bftcup/bftcup"
)

func main() {
	topo := bftcup.Figure1b()
	fmt.Println("knowledge connectivity graph (Fig. 1b):")
	for _, id := range topo.Processes() {
		fmt.Printf("  p%d initially knows %v\n", id, topo[id])
	}

	// Sanity-check the model requirements first (Theorem 1).
	check := bftcup.CheckBFTCUP(topo, []bftcup.ID{4}, 1)
	if !check.OK {
		log.Fatalf("topology rejected: %s", check.Reason)
	}
	fmt.Printf("\nBFT-CUP requirements hold; sink of the safe subgraph: %v\n\n", check.Committee)

	sys, err := bftcup.NewSystem(bftcup.SystemConfig{
		Topology: topo,
		Protocol: bftcup.ProtocolBFTCUP,
		F:        1,
		Exclude:  []bftcup.ID{4}, // Byzantine: silent
		Proposals: map[bftcup.ID]bftcup.Value{
			1: bftcup.Value("apple"),
			2: bftcup.Value("banana"),
			3: bftcup.Value("cherry"),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	sys.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.WaitAll(ctx); err != nil {
		log.Fatal(err)
	}

	for _, id := range sys.Started() {
		v, _ := sys.DecisionOf(id, 0)
		committee, _ := sys.CommitteeOf(id)
		fmt.Printf("p%d decided %q (committee %v)\n", id, v, committee)
	}
	fmt.Printf("\n%d messages, %d bytes on the wire\n", sys.Messages(), sys.Bytes())
}
