package bftcup

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/bftcup/bftcup/internal/core"
	"github.com/bftcup/bftcup/internal/cryptox"
	"github.com/bftcup/bftcup/internal/live"
	"github.com/bftcup/bftcup/internal/model"
	"github.com/bftcup/bftcup/internal/sim"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SystemConfig assembles a live (goroutine-based) run of the protocol stack.
type SystemConfig struct {
	// Topology is the knowledge connectivity graph; each started process
	// uses its out-list as its participant detector.
	Topology Topology
	// Protocol selects the committee-identification rule.
	Protocol Protocol
	// F is the fault threshold handed to processes (ProtocolBFTCUP and
	// ProtocolPermissioned only).
	F int
	// Exclude lists processes that exist in the topology but are never
	// started — the standard way to model silent Byzantine processes.
	Exclude []ID
	// Proposals maps processes to their proposed values; missing entries
	// default to "v<id>".
	Proposals map[ID]Value
	// Blocks is the number of chained decisions over the bootstrapped
	// committee (default 1: classic one-shot consensus).
	Blocks int
	// ProposalFor overrides per-block proposals in chained mode.
	ProposalFor func(id ID, block int) Value
	// Latency optionally injects artificial per-link delay.
	Latency func(from, to ID) time.Duration
	// DiscoveryPeriod, ConsensusTimeout and PollPeriod tune the protocol
	// timers (sane defaults when zero).
	DiscoveryPeriod time.Duration
	// ConsensusTimeout is the committee protocol's base view timeout.
	ConsensusTimeout time.Duration
	// PollPeriod is the non-member decided-value polling interval.
	PollPeriod time.Duration
	// KeySeed seeds deterministic key generation.
	KeySeed int64
}

// Decision is one decided block at one process.
type Decision struct {
	// Process decided Value for chained block number Block.
	Process ID
	Block   int
	Value   Value
}

// System is a running live network of BFT-CUP/BFT-CUPFT processes.
type System struct {
	net     *live.Network
	blocks  int
	started []ID

	mu         sync.Mutex
	decisions  map[ID]map[int]Value
	committees map[ID][]ID
	remaining  int
	done       chan struct{}
	events     chan Decision
}

// NewSystem builds a live system. Call Start to run it and Stop to shut it
// down; Stop must always be called, typically via defer.
func NewSystem(cfg SystemConfig) (*System, error) {
	if len(cfg.Topology) == 0 {
		return nil, fmt.Errorf("bftcup: empty topology")
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1
	}
	if cfg.DiscoveryPeriod <= 0 {
		cfg.DiscoveryPeriod = 10 * time.Millisecond
	}
	if cfg.ConsensusTimeout <= 0 {
		cfg.ConsensusTimeout = 250 * time.Millisecond
	}
	if cfg.PollPeriod <= 0 {
		cfg.PollPeriod = 20 * time.Millisecond
	}
	g := cfg.Topology.graph()
	all := g.Nodes()
	signers, registry, err := cryptox.GenerateKeys(cfg.KeySeed+1, all)
	if err != nil {
		return nil, fmt.Errorf("bftcup: %w", err)
	}
	excluded := model.NewIDSet(cfg.Exclude...)

	var mode core.Mode
	switch cfg.Protocol {
	case ProtocolBFTCUP:
		mode = core.ModeKnownF
	case ProtocolBFTCUPFT:
		mode = core.ModeUnknownF
	case ProtocolPermissioned:
		mode = core.ModePermissioned
	default:
		return nil, fmt.Errorf("bftcup: unknown protocol %v", cfg.Protocol)
	}

	s := &System{
		net:        live.NewNetwork(wrapLatency(cfg.Latency)),
		blocks:     cfg.Blocks,
		decisions:  make(map[ID]map[int]Value),
		committees: make(map[ID][]ID),
		done:       make(chan struct{}),
		events:     make(chan Decision, 1024),
	}
	for _, id := range all {
		if excluded.Has(id) {
			continue
		}
		id := id
		proposal := Value(fmt.Sprintf("v%d", id))
		if v, ok := cfg.Proposals[id]; ok {
			proposal = v
		}
		nodeCfg := core.Config{
			Mode:        mode,
			F:           cfg.F,
			PD:          g.OutSet(id).Clone(),
			Proposal:    proposal,
			PBFTTimeout: sim.Time(cfg.ConsensusTimeout),
			PollPeriod:  sim.Time(cfg.PollPeriod),
			Slots:       uint64(cfg.Blocks),
		}
		nodeCfg.Discovery.Period = sim.Time(cfg.DiscoveryPeriod)
		if cfg.ProposalFor != nil {
			nodeCfg.ProposalFor = func(slot uint64) Value { return cfg.ProposalFor(id, int(slot)) }
		}
		var node *core.Node
		nodeCfg.OnSlotDecided = func(slot uint64, v Value) {
			s.recordDecision(node, id, int(slot), v)
		}
		node = core.NewNode(signers[id], registry, nodeCfg, nil)
		if err := s.net.AddNode(id, node); err != nil {
			return nil, fmt.Errorf("bftcup: %w", err)
		}
		s.started = append(s.started, id)
		s.decisions[id] = make(map[int]Value)
	}
	if len(s.started) == 0 {
		return nil, fmt.Errorf("bftcup: every process excluded")
	}
	sortIDs(s.started)
	s.remaining = len(s.started) * cfg.Blocks
	return s, nil
}

func wrapLatency(f func(from, to ID) time.Duration) func(model.ID, model.ID) time.Duration {
	if f == nil {
		return nil
	}
	return func(a, b model.ID) time.Duration { return f(a, b) }
}

// recordDecision runs on the deciding node's goroutine.
func (s *System) recordDecision(node *core.Node, id ID, block int, v Value) {
	s.mu.Lock()
	if _, dup := s.decisions[id][block]; dup {
		s.mu.Unlock()
		return
	}
	s.decisions[id][block] = v
	if cand, ok := node.Committee(); ok {
		s.committees[id] = cand.Members().Sorted()
	}
	s.remaining--
	finished := s.remaining == 0
	s.mu.Unlock()
	select {
	case s.events <- Decision{Process: id, Block: block, Value: v}:
	default: // observers that do not drain must not block consensus
	}
	if finished {
		close(s.done)
	}
}

// Start launches the network.
func (s *System) Start() { s.net.Start() }

// Stop shuts the network down and joins every goroutine. Idempotent.
func (s *System) Stop() { s.net.Stop() }

// Events returns a stream of decisions (best-effort: if the consumer lags,
// events are dropped from the stream but still recorded in Decisions).
func (s *System) Events() <-chan Decision { return s.events }

// WaitAll blocks until every started process has decided every block, or the
// context expires.
func (s *System) WaitAll(ctx context.Context) error {
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		defer s.mu.Unlock()
		return fmt.Errorf("bftcup: %d decisions outstanding: %w", s.remaining, ctx.Err())
	}
}

// DecisionOf returns the value process id decided for a block.
func (s *System) DecisionOf(id ID, block int) (Value, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.decisions[id][block]
	return v, ok
}

// Decisions returns a snapshot of all decisions (process → block → value).
func (s *System) Decisions() map[ID]map[int]Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ID]map[int]Value, len(s.decisions))
	for id, blocks := range s.decisions {
		m := make(map[int]Value, len(blocks))
		for b, v := range blocks {
			m[b] = v
		}
		out[id] = m
	}
	return out
}

// CommitteeOf returns the committee process id identified, once it decided.
func (s *System) CommitteeOf(id ID) ([]ID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.committees[id]
	return append([]ID(nil), c...), ok
}

// Started returns the processes actually running (topology minus Exclude).
func (s *System) Started() []ID { return append([]ID(nil), s.started...) }

// Messages returns the total messages sent so far.
func (s *System) Messages() int64 { return s.net.Messages() }

// Bytes returns the total payload bytes sent so far.
func (s *System) Bytes() int64 { return s.net.Bytes() }
